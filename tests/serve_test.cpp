// Tests of the serve subsystem: the crash-tolerant append log + persistent
// query store (CacheStoreTest), the NDJSON wire protocol (ServeProtocolTest)
// and the daemon itself over a real Unix socket (ServeTest). ServeTest and
// CacheStoreTest run under the ThreadSanitizer preset (scripts/tier1.sh) —
// keep the fixture names matched by its filter.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/session.h"
#include "kernels/corpus.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "smt/cache_store.h"
#include "smt/query_cache.h"

namespace pugpara {
namespace {

using check::CheckKind;
using check::CheckOptions;
using check::CheckRequest;

/// Unique per-test path under the gtest temp dir (ctest may run tests
/// concurrently; shared socket/store paths would cross-talk).
std::string tempPath(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "pugpara_" + info->test_suite_name() + "_" +
         info->name() + "_" + name;
}

CheckOptions miniOpts() {
  CheckOptions o;
  o.method = check::Method::Parameterized;
  o.width = 8;
  o.backend = smt::Backend::Mini;
  o.solverTimeoutMs = 120000;
  return o;
}

std::vector<std::string> fileLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void writeLines(const std::string& path, const std::vector<std::string>& lines,
                bool finalNewline = true) {
  std::ofstream out(path, std::ios::trunc);
  for (size_t i = 0; i < lines.size(); ++i) {
    out << lines[i];
    if (i + 1 < lines.size() || finalNewline) out << '\n';
  }
}

// ---- CacheStoreTest --------------------------------------------------------

TEST(CacheStoreTest, RoundTripThroughSinkAndReplay) {
  const std::string path = tempPath("store.pqc");
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
  {
    smt::QueryCache cache;
    smt::PersistentQueryStore store;
    ASSERT_TRUE(store.open(path, cache));
    cache.insert({1, 2}, smt::CheckResult::Unsat);
    cache.insert({3, 4}, smt::CheckResult::Sat);
    // Unknown must neither enter the cache nor reach the journal.
    cache.insert({5, 6}, smt::CheckResult::Unknown);
    store.flush();
    EXPECT_EQ(store.stats().appended, 2u);
    store.close();
  }
  smt::QueryCache fresh;
  smt::PersistentQueryStore store;
  ASSERT_TRUE(store.open(path, fresh));
  EXPECT_EQ(store.stats().loaded, 2u);
  EXPECT_EQ(store.stats().corrupt, 0u);
  EXPECT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh.lookup({1, 2}), smt::CheckResult::Unsat);
  EXPECT_EQ(fresh.lookup({3, 4}), smt::CheckResult::Sat);
  EXPECT_FALSE(fresh.lookup({5, 6}).has_value());
  store.close();
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

TEST(CacheStoreTest, ReplayedEntriesAreNotReJournaled) {
  const std::string path = tempPath("store.pqc");
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
  {
    smt::QueryCache cache;
    smt::PersistentQueryStore store;
    ASSERT_TRUE(store.open(path, cache));
    cache.insert({7, 8}, smt::CheckResult::Unsat);
    store.flush();
    store.close();
  }
  {
    // Reopening replays the entry; the file must not grow on close.
    smt::QueryCache cache;
    smt::PersistentQueryStore store;
    ASSERT_TRUE(store.open(path, cache));
    EXPECT_EQ(store.stats().appended, 0u);
    // Re-inserting a replayed entry is a refresh, not a new record.
    cache.insert({7, 8}, smt::CheckResult::Unsat);
    store.flush();
    EXPECT_EQ(store.stats().appended, 0u);
    store.close();
  }
  EXPECT_EQ(fileLines(path).size(), 1u);
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

TEST(CacheStoreTest, TornTailAndCorruptCrcDegradeToMiss) {
  const std::string path = tempPath("store.pqc");
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
  {
    smt::QueryCache cache;
    smt::PersistentQueryStore store;
    ASSERT_TRUE(store.open(path, cache));
    cache.insert({1, 2}, smt::CheckResult::Unsat);
    cache.insert({3, 4}, smt::CheckResult::Sat);
    store.flush();
    store.close();
  }
  std::vector<std::string> lines = fileLines(path);
  ASSERT_EQ(lines.size(), 2u);
  // Flip one payload byte of the second record (CRC now mismatches) and
  // simulate a crash-torn tail: a record cut off mid-CRC, no newline.
  lines[1][lines[1].size() - 1] ^= 1;
  lines.push_back(lines[0].substr(0, 10));
  writeLines(path, lines, /*finalNewline=*/false);

  smt::QueryCache fresh;
  smt::PersistentQueryStore store;
  ASSERT_TRUE(store.open(path, fresh));
  EXPECT_EQ(store.stats().loaded, 1u);
  EXPECT_EQ(store.stats().corrupt, 2u);
  EXPECT_EQ(fresh.lookup({1, 2}), smt::CheckResult::Unsat);  // survivor
  EXPECT_FALSE(fresh.lookup({3, 4}).has_value());            // miss, not lie
  store.close();
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

TEST(CacheStoreTest, GarbageFileLoadsNothingButStaysUsable) {
  const std::string path = tempPath("store.pqc");
  writeLines(path, {"this is not a cache", "pqc1 nothex garbage",
                    "pqc1 0123456789abcdef wrong-crc-payload"});
  smt::QueryCache cache;
  smt::PersistentQueryStore store;
  ASSERT_TRUE(store.open(path, cache));
  EXPECT_EQ(store.stats().loaded, 0u);
  EXPECT_EQ(store.stats().corrupt, 3u);
  EXPECT_EQ(cache.size(), 0u);
  // The store still journals fresh entries after surviving the garbage.
  cache.insert({9, 9}, smt::CheckResult::Unsat);
  store.flush();
  EXPECT_EQ(store.stats().appended, 1u);
  store.close();
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

TEST(CacheStoreTest, SecondWriterFallsBackToReadOnly) {
  const std::string path = tempPath("store.pqc");
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
  smt::QueryCache cacheA;
  smt::PersistentQueryStore storeA;
  ASSERT_TRUE(storeA.open(path, cacheA));
  ASSERT_TRUE(storeA.stats().writable);
  cacheA.insert({1, 1}, smt::CheckResult::Unsat);
  storeA.flush();

  // A second store on the same path loses the flock: it still replays the
  // snapshot but degrades to read-only instead of interleaving appends.
  smt::QueryCache cacheB;
  smt::PersistentQueryStore storeB;
  ASSERT_TRUE(storeB.open(path, cacheB));
  EXPECT_FALSE(storeB.stats().writable);
  EXPECT_EQ(cacheB.lookup({1, 1}), smt::CheckResult::Unsat);
  cacheB.insert({2, 2}, smt::CheckResult::Sat);
  storeB.flush();
  EXPECT_EQ(storeB.stats().appended, 0u);
  EXPECT_EQ(storeB.stats().dropped, 1u);
  storeB.close();
  storeA.close();

  // With the first writer gone the lock is free again.
  smt::QueryCache cacheC;
  smt::PersistentQueryStore storeC;
  ASSERT_TRUE(storeC.open(path, cacheC));
  EXPECT_TRUE(storeC.stats().writable);
  storeC.close();
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

// ---- ServeProtocolTest -----------------------------------------------------

TEST(ServeProtocolTest, EncodeParseRoundTrip) {
  serve::Request req;
  req.op = serve::Request::Op::Check;
  req.id = "r42";
  req.source = "void k() { int x;\n x = 1; }\n \"quoted\" \\ text";
  req.kind = "races";
  req.kernel = "k";
  req.deadlineMs = 1234;
  req.options = miniOpts();
  req.options.prefilter = false;

  serve::Request parsed;
  std::string err;
  ASSERT_TRUE(serve::parseRequest(serve::encodeRequest(req), CheckOptions{},
                                  &parsed, &err))
      << err;
  EXPECT_EQ(parsed.id, "r42");
  EXPECT_EQ(parsed.source, req.source);
  EXPECT_EQ(parsed.kind, "races");
  EXPECT_EQ(parsed.kernel, "k");
  EXPECT_EQ(parsed.deadlineMs, 1234u);
  EXPECT_EQ(parsed.options.width, 8u);
  EXPECT_EQ(parsed.options.backend, smt::Backend::Mini);
  EXPECT_FALSE(parsed.options.prefilter);
}

TEST(ServeProtocolTest, MalformedLinesAreRejectedWithId) {
  serve::Request out;
  std::string err;
  EXPECT_FALSE(serve::parseRequest("not json at all", CheckOptions{}, &out,
                                   &err));
  EXPECT_FALSE(serve::parseRequest("{\"op\":\"frobnicate\",\"id\":\"x\"}",
                                   CheckOptions{}, &out, &err));
  EXPECT_EQ(out.id, "x");  // id surfaces so the error event can correlate
  // A kind that needs a kernel, without one.
  EXPECT_FALSE(serve::parseRequest(
      "{\"op\":\"check\",\"id\":\"y\",\"source\":\"s\",\"kind\":\"races\"}",
      CheckOptions{}, &out, &err));
}

TEST(ServeProtocolTest, CanonicalStringIgnoresTimeBudgetsOnly) {
  CheckRequest a;
  a.kind = CheckKind::Races;
  a.kernel = "k";
  a.options = miniOpts();

  CheckRequest b = a;
  b.options.solverTimeoutMs = 1;  // budgets must not split the memo key
  b.deadlineMs = 77;
  EXPECT_EQ(serve::canonicalCheckString("src", a),
            serve::canonicalCheckString("src", b));

  CheckRequest c = a;
  c.options.width = 16;  // semantics-affecting: must split it
  EXPECT_NE(serve::canonicalCheckString("src", a),
            serve::canonicalCheckString("src", c));
  EXPECT_NE(serve::canonicalCheckString("src", a),
            serve::canonicalCheckString("src2", a));
}

// ---- ServeTest -------------------------------------------------------------

/// Starts a daemon on a per-test Unix socket, with or without a cache dir.
struct TestServer {
  serve::ServeOptions opts;
  std::unique_ptr<serve::Server> server;
  std::string socketPath;

  explicit TestServer(size_t queueCapacity = 256,
                      const std::string& cacheDir = "") {
    socketPath = tempPath("sock");
    std::remove(socketPath.c_str());
    opts.socketPath = socketPath;
    opts.jobs = 2;
    opts.queueCapacity = queueCapacity;
    opts.cacheDir = cacheDir;
    opts.defaults = miniOpts();
    server = std::make_unique<serve::Server>(opts);
    std::string err;
    if (!server->start(&err)) ADD_FAILURE() << "server start: " << err;
  }

  ~TestServer() {
    if (server) server->stop();
    std::remove(socketPath.c_str());
  }

  serve::Client connect() {
    serve::Client client;
    std::string err;
    EXPECT_TRUE(client.connectUnix(socketPath, &err)) << err;
    return client;
  }
};

serve::Request checkAll(const std::string& source, const std::string& id) {
  serve::Request req;
  req.id = id;
  req.kind = "all";
  req.source = source;
  req.options = miniOpts();
  return req;
}

TEST(ServeTest, PingPong) {
  TestServer ts;
  serve::Client client = ts.connect();
  serve::Request req;
  req.op = serve::Request::Op::Ping;
  req.id = "p1";
  const serve::SubmitOutcome out = serve::submit(client, req);
  EXPECT_EQ(out.terminal, "pong");
}

TEST(ServeTest, MalformedLineYieldsErrorEvent) {
  TestServer ts;
  serve::Client client = ts.connect();
  ASSERT_TRUE(client.sendLine("this is not json"));
  const std::optional<std::string> line = client.readLine();
  ASSERT_TRUE(line.has_value());
  serve::jsonp::Value ev;
  std::string err;
  ASSERT_TRUE(serve::jsonp::parse(*line, &ev, &err));
  EXPECT_EQ(ev.getString("event"), "error");
}

TEST(ServeTest, CheckMatchesDirectSessionRun) {
  const std::string source =
      kernels::combinedSource({"vecAdd", "racyHistogram"}, 8);
  TestServer ts;
  serve::Client client = ts.connect();
  const serve::SubmitOutcome out =
      serve::submit(client, checkAll(source, "eq"));
  ASSERT_EQ(out.terminal, "done");
  ASSERT_EQ(out.results.size(), 6u);  // 2 kernels x races/asserts/postcond

  // Ground truth: the same checks through VerificationSession directly.
  check::VerificationSession session(source);
  for (const auto& [cached, result] : out.results) {
    CheckRequest req;
    const std::string kind = result.getString("kind");
    if (kind == "races") req.kind = CheckKind::Races;
    else if (kind == "asserts") req.kind = CheckKind::Asserts;
    else req.kind = CheckKind::Postconditions;
    req.kernel = result.getString("kernel");
    req.options = miniOpts();
    const check::CheckResult direct = session.run(req);
    const serve::jsonp::Value* report = result.find("report");
    ASSERT_NE(report, nullptr);
    EXPECT_EQ(report->getString("outcome"),
              check::toString(direct.report.outcome))
        << result.getString("kind") << "(" << req.kernel << ")";
  }
}

TEST(ServeTest, WarmResubmissionHitsResultMemo) {
  const std::string source =
      kernels::combinedSource({"vecAdd", "racyHistogram"}, 8);
  TestServer ts;
  serve::Client client = ts.connect();
  const serve::SubmitOutcome cold =
      serve::submit(client, checkAll(source, "c1"));
  ASSERT_EQ(cold.terminal, "done");
  EXPECT_EQ(cold.memoHits, 0u);

  const serve::SubmitOutcome warm =
      serve::submit(client, checkAll(source, "c2"));
  ASSERT_EQ(warm.terminal, "done");
  ASSERT_EQ(warm.results.size(), cold.results.size());
  // Every check that settled cold is answered from the memo warm.
  size_t settled = 0;
  for (const auto& [cached, result] : cold.results) {
    const serve::jsonp::Value* report = result.find("report");
    const std::string outcome = report ? report->getString("outcome") : "";
    if (outcome != "unknown" && outcome != "unsupported") ++settled;
  }
  EXPECT_EQ(warm.memoHits, settled);
  EXPECT_GT(settled, 0u);
  // Warm verdicts match cold verdicts check-for-check.
  const serve::ServeStats stats = ts.server->stats();
  EXPECT_GE(stats.sessionHits, 1u);  // re-submission reused the parse
}

TEST(ServeTest, PersistentCacheSurvivesRestart) {
  const std::string source = kernels::combinedSource({"vecAdd"}, 8);
  const std::string cacheDir = tempPath("cache");
  size_t settled = 0;
  {
    TestServer ts(256, cacheDir);
    serve::Client client = ts.connect();
    const serve::SubmitOutcome cold =
        serve::submit(client, checkAll(source, "c1"));
    ASSERT_EQ(cold.terminal, "done");
    for (const auto& [cached, result] : cold.results) {
      const serve::jsonp::Value* report = result.find("report");
      const std::string outcome = report ? report->getString("outcome") : "";
      if (outcome != "unknown" && outcome != "unsupported") ++settled;
    }
    ASSERT_GT(settled, 0u);
  }
  {
    // A brand-new daemon on the same cache dir answers from disk.
    TestServer ts(256, cacheDir);
    serve::Client client = ts.connect();
    const serve::SubmitOutcome disk =
        serve::submit(client, checkAll(source, "c2"));
    ASSERT_EQ(disk.terminal, "done");
    EXPECT_EQ(disk.memoHits, settled);
    const serve::ServeStats stats = ts.server->stats();
    EXPECT_GT(stats.memo.loaded, 0u);
    EXPECT_EQ(stats.memo.corrupt, 0u);
  }
}

TEST(ServeTest, AdmissionControlShedsWhenQueueFull) {
  // Zero queue capacity: nothing can be admitted, every fresh check sheds.
  const std::string source = kernels::combinedSource({"vecAdd"}, 8);
  TestServer ts(/*queueCapacity=*/0);
  serve::Client client = ts.connect();
  const serve::SubmitOutcome out =
      serve::submit(client, checkAll(source, "o1"));
  EXPECT_EQ(out.terminal, "overloaded");
  ASSERT_TRUE(out.done.find("shed") != nullptr);
  EXPECT_EQ(out.done.getU64("shed", 0), 3u);
  const serve::ServeStats stats = ts.server->stats();
  EXPECT_EQ(stats.shedChecks, 3u);
}

TEST(ServeTest, ShutdownOpUnblocksWait) {
  TestServer ts;
  serve::Client client = ts.connect();
  serve::Request req;
  req.op = serve::Request::Op::Shutdown;
  req.id = "q";
  const serve::SubmitOutcome out = serve::submit(client, req);
  EXPECT_EQ(out.terminal, "bye");
  EXPECT_TRUE(ts.server->waitFor(5000));
}

}  // namespace
}  // namespace pugpara
