// Cross-module integration and property tests:
//  * verified-implies-concretely-equal: whenever a checker PROVES
//    equivalence, the VM must agree on random inputs (and vice versa for
//    found bugs, via replay);
//  * postcondition checks across grids for every specified corpus kernel;
//  * mutant sweeps where symbolic verdicts and concrete differential
//    testing must never contradict each other.
#include <gtest/gtest.h>

#include <cstring>

#include "check/session.h"
#include "exec/compiler.h"
#include "exec/machine.h"
#include "kernels/corpus.h"
#include "kernels/mutate.h"
#include "support/rng.h"

namespace pugpara {
namespace {

using check::CheckOptions;
using check::Method;
using check::Outcome;
using check::Report;
using check::VerificationSession;

/// Runs two kernels on the same random inputs; true when all outputs match.
bool concretelyEqual(const lang::Kernel& a, const lang::Kernel& b,
                     const encode::GridConfig& grid, uint32_t width,
                     uint64_t seed) {
  auto ca = exec::compile(a);
  auto cb = exec::compile(b);
  exec::LaunchParams p;
  p.grid = {grid.gdimX, grid.gdimY, 1};
  p.block = {grid.bdimX, grid.bdimY, grid.bdimZ};
  p.width = width;
  SplitMix64 rng(seed);
  std::vector<exec::Buffer> ba, bb;
  const size_t cells = size_t{1} << std::min(width, 12u);
  for (const auto& param : a.params) {
    if (param->type.isPointer) {
      exec::Buffer buf(param->name, cells);
      for (size_t i = 0; i < cells; ++i)
        buf.store(i, expr::maskToWidth(rng.next(), width));
      ba.push_back(buf);
      bb.push_back(buf);
    } else {
      p.scalarArgs.push_back(grid.gdimX * grid.bdimX);  // size-like scalars
    }
  }
  auto ra = exec::launch(ca, p, ba);
  auto rb = exec::launch(cb, p, bb);
  if (!ra.completed || !rb.completed) return ra.completed == rb.completed;
  for (size_t i = 0; i < ba.size(); ++i)
    if (ba[i].raw() != bb[i].raw()) return false;
  return true;
}

// ---- Verified equivalence implies concrete equality ---------------------------

TEST(SoundnessTest, VerifiedPairsAgreeConcretely) {
  struct PairCase {
    const char* a;
    const char* b;
    encode::GridConfig grid;
  };
  const PairCase cases[] = {
      {"transposeNaive", "transposeOpt", {2, 2, 4, 4, 1}},
      {"reduceMod", "reduceStrided", {2, 1, 8, 1, 1}},
      {"reduceMod", "reduceSequential", {2, 1, 8, 1, 1}},
  };
  for (const auto& c : cases) {
    VerificationSession s(kernels::combinedSource({c.a, c.b}, 16));
    CheckOptions o;
    o.method = Method::NonParameterized;
    o.width = 16;
    o.grid = c.grid;
    Report r = s.equivalence(c.a, c.b, o);
    ASSERT_EQ(r.outcome, Outcome::Verified) << c.a << " vs " << c.b << ": "
                                            << r.str();
    for (uint64_t seed = 1; seed <= 8; ++seed)
      EXPECT_TRUE(concretelyEqual(s.kernel(c.a), s.kernel(c.b), c.grid, 16,
                                  seed))
          << c.a << " vs " << c.b << " seed " << seed;
  }
}

// ---- Mutant sweep: symbolic and concrete verdicts must be consistent ----------

class MutantSweep
    : public ::testing::TestWithParam<kernels::MutationKind> {};

TEST_P(MutantSweep, SymbolicVerdictNeverContradictsConcreteRuns) {
  const uint32_t width = 12;
  const encode::GridConfig grid{2, 1, 4, 1, 1};
  auto base = lang::parseAndAnalyze(
      kernels::combinedSource({"reduceStrided"}, width));
  const lang::Kernel& original = *base->kernels[0];

  const size_t sites =
      std::min<size_t>(kernels::countSites(original, GetParam()), 3);
  for (size_t site = 0; site < sites; ++site) {
    auto prog = lang::parseAndAnalyze(
        kernels::combinedSource({"reduceStrided"}, width));
    auto mutant = kernels::mutateAt(*prog->kernels[0], GetParam(), site);
    std::string name = mutant.kernel->name;
    std::string description = mutant.description;
    prog->kernels.push_back(std::move(mutant.kernel));
    VerificationSession s(std::move(prog));

    CheckOptions o;
    o.method = Method::NonParameterized;
    o.width = width;
    o.grid = grid;
    o.solverTimeoutMs = 15000;  // hard mutants may time out; Unknown is fine
    o.replayCounterexamples = false;  // this test runs its own differential
    Report r = s.equivalence("reduceStrided", name, o);

    // Concrete differential over several random inputs.
    bool anyDiff = false;
    for (uint64_t seed = 1; seed <= 6 && !anyDiff; ++seed)
      anyDiff = !concretelyEqual(s.kernel("reduceStrided"), s.kernel(name),
                                 grid, width, seed);

    if (r.outcome == Outcome::Verified) {
      // Proven equivalent: no input may distinguish them.
      EXPECT_FALSE(anyDiff) << description;
    } else if (anyDiff && r.outcome != Outcome::Unknown) {
      // Concretely different: the checker must not claim equivalence.
      EXPECT_EQ(r.outcome, Outcome::BugFound) << description;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, MutantSweep,
    ::testing::Values(kernels::MutationKind::AddressOffByOne,
                      kernels::MutationKind::GuardNegate,
                      kernels::MutationKind::CompareSwap,
                      kernels::MutationKind::ArithSwap,
                      kernels::MutationKind::ConstantTweak),
    [](const auto& info) {
      std::string name = kernels::toString(info.param);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// ---- Postconditions across grids ------------------------------------------------

class PostcondGrid : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PostcondGrid, SpecifiedCorpusKernelsHoldOnEveryGrid) {
  const uint32_t n = GetParam();
  // vecAdd is linear and checks quickly at 16 bits; saxpy multiplies a
  // symbolic scalar into symbolic data, the exact bit-width sensitivity the
  // paper reports ("we must concretize some of the symbolic variables") —
  // 8 bits keeps the multiplier miter tractable.
  struct KernelWidth { const char* name; uint32_t width; };
  for (KernelWidth kw : {KernelWidth{"vecAdd", 16}, KernelWidth{"saxpy", 8}}) {
    VerificationSession s(kernels::combinedSource({kw.name}, kw.width));
    CheckOptions o;
    o.method = Method::NonParameterized;
    o.width = kw.width;
    o.grid = encode::GridConfig{n / 4, 1, 4, 1, 1};
    o.solverTimeoutMs = 60000;
    Report r = s.postconditions(kw.name, o);
    EXPECT_EQ(r.outcome, Outcome::Verified) << kw.name << " n=" << n << ": "
                                            << r.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PostcondGrid,
                         ::testing::Values(4u, 8u, 16u, 32u));

TEST(PostcondTest, TransposePostcondAcrossGrids) {
  VerificationSession s(kernels::combinedSource({"transposeNaive"}, 16));
  for (encode::GridConfig grid :
       {encode::GridConfig{1, 1, 2, 2, 1}, encode::GridConfig{2, 2, 2, 2, 1},
        encode::GridConfig{1, 2, 4, 2, 1}}) {
    CheckOptions o;
    o.method = Method::NonParameterized;
    o.width = 16;
    o.grid = grid;
    Report r = s.postconditions("transposeNaive", o);
    EXPECT_EQ(r.outcome, Outcome::Verified) << grid.str() << ": " << r.str();
  }
}

// ---- Non-parameterized self-equivalence of the loop-heavy kernels --------------

TEST(SelfEquivalenceTest, ScanAndBitonicAgainstThemselves) {
  for (const char* name : {"scanNaive", "bitonicSort"}) {
    // A renamed copy of the same kernel must be provably equivalent.
    std::string src = kernels::combinedSource({name}, 12);
    std::string copy = src;
    size_t pos = copy.find(name);
    ASSERT_NE(pos, std::string::npos);
    copy.replace(pos, std::strlen(name), std::string(name) + "B");
    VerificationSession s(src + copy);
    CheckOptions o;
    o.method = Method::NonParameterized;
    o.width = 12;
    o.grid = encode::GridConfig{1, 1, 8, 1, 1};
    Report r = s.equivalence(name, std::string(name) + "B", o);
    EXPECT_EQ(r.outcome, Outcome::Verified) << name << ": " << r.str();
  }
}

// ---- Failure-path behavior -------------------------------------------------------

TEST(FailureModeTest, UnknownKernelNameThrows) {
  VerificationSession s("void k(int *a) { a[0] = 1; }");
  EXPECT_THROW((void)s.kernel("nope"), PugError);
}

TEST(FailureModeTest, FrontEndErrorsSurfaceInConstructor) {
  EXPECT_THROW(VerificationSession s("void k(int *a) { a[0] = ; }"),
               PugError);
  EXPECT_THROW(VerificationSession s("void k(int *a) { b[0] = 1; }"),
               PugError);
}

TEST(FailureModeTest, NonParamWithoutGridIsUnsupported) {
  VerificationSession s(kernels::combinedSource({"vecAdd"}, 8));
  CheckOptions o;
  o.method = Method::NonParameterized;  // no grid provided
  Report r = s.postconditions("vecAdd", o);
  EXPECT_EQ(r.outcome, Outcome::Unsupported);
}

TEST(FailureModeTest, MismatchedSignaturesRejected) {
  VerificationSession s(R"(
void a(int *x) { x[0] = 1; }
void b(int *x, int *y) { x[0] = 1; y[0] = 1; }
)");
  CheckOptions o;
  o.width = 8;
  Report r = s.equivalence("a", "b", o);
  EXPECT_EQ(r.outcome, Outcome::Unsupported);
}

TEST(FailureModeTest, ParamUnsupportedShapesReportCleanly) {
  // Nested barrier loops: the parameterized method must refuse with a
  // diagnostic, not crash or mis-verify.
  VerificationSession s(kernels::combinedSource({"bitonicSort"}, 12));
  CheckOptions o;
  o.method = Method::Parameterized;
  o.width = 12;
  Report r = s.races("bitonicSort", o);
  EXPECT_EQ(r.outcome, Outcome::Unsupported);
  EXPECT_NE(r.detail.find("nested"), std::string::npos) << r.detail;
}

// ---- Assertion checking through the session -----------------------------------

TEST(AssertIntegrationTest, GuardedAccessPatternVerified) {
  const char* src = R"(
void guarded(int *a, int n) {
  assume(n == gdim.x * bdim.x && bdim.y == 1 && bdim.z == 1 && gdim.y == 1);
  int i = bid.x * bdim.x + tid.x;
  if (i < n) {
    assert(i >= 0 && i < n);
    a[i] = i;
  }
}
)";
  VerificationSession s(src);
  CheckOptions o;
  o.method = Method::Parameterized;
  o.width = 8;
  Report r = s.asserts("guarded", o);
  EXPECT_EQ(r.outcome, Outcome::Verified) << r.str();
}

TEST(AssertIntegrationTest, OffByOneGuardCaught) {
  const char* src = R"(
void guarded(int *a, int n) {
  assume(n == gdim.x * bdim.x && bdim.y == 1 && bdim.z == 1 && gdim.y == 1);
  int i = bid.x * bdim.x + tid.x;
  if (i <= n) {
    assert(i < n);
    a[i % n] = i;
  }
}
)";
  VerificationSession s(src);
  CheckOptions o;
  o.method = Method::Parameterized;
  o.width = 8;
  Report r = s.asserts("guarded", o);
  EXPECT_EQ(r.outcome, Outcome::BugFound) << r.str();
}

}  // namespace
}  // namespace pugpara
