// End-to-end tests of the top-level checkers (the tool's public face):
// equivalence, postconditions, races, performance bugs, counterexample
// replay — on the built-in kernel corpus.
#include <gtest/gtest.h>

#include "check/session.h"
#include "kernels/corpus.h"
#include "kernels/mutate.h"

namespace pugpara::check {
namespace {

using kernels::combinedSource;

CheckOptions paramOpts(uint32_t width = 8) {
  CheckOptions o;
  o.method = Method::Parameterized;
  o.width = width;
  o.solverTimeoutMs = 120000;
  return o;
}

TEST(EquivCheckerTest, TransposePlusCVerifiedParametrically) {
  VerificationSession s(
      combinedSource({"transposeNaive", "transposeOpt"}, 8));
  CheckOptions o = paramOpts(8);
  o.concretize = {{"bdim.x", 4}, {"bdim.y", 4}, {"bdim.z", 1}};
  Report r = s.equivalence("transposeNaive", "transposeOpt", o);
  EXPECT_EQ(r.outcome, Outcome::Verified) << r.str();
}

TEST(EquivCheckerTest, NonSquareHiddenAssumptionRevealed) {
  // Without the square-block assumption the optimized kernel is wrong for
  // some configurations — PUGpara finds one and replay confirms it.
  VerificationSession s(
      combinedSource({"transposeNaive", "transposeOptNoSquare"}, 8));
  CheckOptions o = paramOpts(8);
  o.method = Method::ParameterizedBugHunt;
  Report r = s.equivalence("transposeNaive", "transposeOptNoSquare", o);
  EXPECT_EQ(r.outcome, Outcome::BugFound) << r.str();
  ASSERT_FALSE(r.counterexamples.empty());
  EXPECT_TRUE(r.counterexamples[0].replayConfirmed) << r.str();
  // The witness block must indeed be non-square.
  EXPECT_NE(r.counterexamples[0].bdimX, r.counterexamples[0].bdimY);
}

TEST(EquivCheckerTest, ReductionLoopAlignedVerified) {
  VerificationSession s(combinedSource({"reduceMod", "reduceStrided"}, 8));
  Report r = s.equivalence("reduceMod", "reduceStrided", paramOpts(8));
  EXPECT_EQ(r.outcome, Outcome::Verified) << r.str();
}

TEST(EquivCheckerTest, SequentialReductionNeedsNonParam) {
  // Interleaved vs sequential addressing is NOT per-iteration equivalent;
  // the parameterized alignment cannot conclude, but the non-parameterized
  // method proves it for a concrete grid (the paper's fallback).
  VerificationSession s(
      combinedSource({"reduceMod", "reduceSequential"}, 12));
  CheckOptions o = paramOpts(12);
  Report rp = s.equivalence("reduceMod", "reduceSequential", o);
  EXPECT_NE(rp.outcome, Outcome::Verified);
  EXPECT_NE(rp.outcome, Outcome::BugFound) << rp.str();

  o.method = Method::NonParameterized;
  o.grid = encode::GridConfig{1, 1, 8, 1, 1};
  Report rn = s.equivalence("reduceMod", "reduceSequential", o);
  EXPECT_EQ(rn.outcome, Outcome::Verified) << rn.str();
}

TEST(EquivCheckerTest, MutatedReductionCaughtAndReplayed) {
  VerificationSession base(combinedSource({"reduceStrided"}, 8));
  auto mutant = kernels::mutateAt(base.kernel("reduceStrided"),
                                  kernels::MutationKind::AddressOffByOne, 2);
  auto prog = lang::parseAndAnalyze(combinedSource({"reduceStrided"}, 8));
  prog->kernels.push_back(std::move(mutant.kernel));
  VerificationSession s(std::move(prog));

  // Shifting the write address moves the write SET, which bug-hunt mode
  // cannot see (it assumes every read has a writer — the paper's
  // under-approximation); the exact frame encoding catches it.
  CheckOptions o = paramOpts(8);
  Report r = s.equivalence("reduceStrided",
                           s.program().kernels[1]->name, o);
  EXPECT_EQ(r.outcome, Outcome::BugFound) << r.str();
  ASSERT_FALSE(r.counterexamples.empty());
  EXPECT_TRUE(r.counterexamples[0].replayConfirmed) << r.str();
}

TEST(EquivCheckerTest, NonParamBitonicSelfEquivalence) {
  // Nested barrier loops: parameterized mode refuses, Auto falls back to
  // the concrete grid and verifies the (trivially true) self-equivalence.
  VerificationSession s(combinedSource({"bitonicSort"}, 12) +
                        combinedSource({"bitonicSort"}, 12)
                            .replace(combinedSource({"bitonicSort"}, 12)
                                         .find("bitonicSort"),
                                     strlen("bitonicSort"), "bitonicSortB"));
  CheckOptions o;
  o.method = Method::Auto;
  o.width = 12;
  o.grid = encode::GridConfig{1, 1, 4, 1, 1};
  Report r = s.equivalence("bitonicSort", "bitonicSortB", o);
  EXPECT_EQ(r.outcome, Outcome::Verified) << r.str();
  EXPECT_EQ(r.method, "non-parameterized");
}


TEST(EquivCheckerTest, ReverseFullySymbolicEquivalence) {
  // Linear addressing: the parameterized method proves this optimization
  // with NOTHING concretized — thread count, block size, sizes and inputs
  // all symbolic (the case the transpose needs "+C" for).
  VerificationSession s(combinedSource({"reverseNaive", "reverseOpt"}, 8));
  Report r = s.equivalence("reverseNaive", "reverseOpt", paramOpts(8));
  EXPECT_EQ(r.outcome, Outcome::Verified) << r.str();
}

TEST(PerfCheckerTest, ReversePairCoalescingContrast) {
  CheckOptions o = paramOpts(8);
  VerificationSession naive(combinedSource({"reverseNaive"}, 8));
  Report rn = naive.performance("reverseNaive", o);
  EXPECT_EQ(rn.outcome, Outcome::BugFound) << rn.str();
  VerificationSession opt(combinedSource({"reverseOpt"}, 8));
  Report ro = opt.performance("reverseOpt", o);
  EXPECT_EQ(ro.outcome, Outcome::Verified) << ro.str();
}

TEST(PostcondCheckerTest, VecAddVerifiedParametrically) {
  VerificationSession s(combinedSource({"vecAdd"}, 8));
  Report r = s.postconditions("vecAdd", paramOpts(8));
  EXPECT_EQ(r.outcome, Outcome::Verified) << r.str();
}

TEST(PostcondCheckerTest, SaxpyMutantCaughtWithReplay) {
  VerificationSession base(combinedSource({"saxpy"}, 8));
  auto mutant = kernels::mutateAt(base.kernel("saxpy"),
                                  kernels::MutationKind::ArithSwap, 1);
  auto prog = std::make_unique<lang::Program>();
  prog->kernels.push_back(std::move(mutant.kernel));
  VerificationSession s(std::move(prog));
  CheckOptions o = paramOpts(8);
  Report r = s.postconditions(s.program().kernels[0]->name, o);
  EXPECT_EQ(r.outcome, Outcome::BugFound) << r.str();
  ASSERT_FALSE(r.counterexamples.empty());
  EXPECT_TRUE(r.counterexamples[0].replayConfirmed) << r.str();
}

TEST(PostcondCheckerTest, NonParamTransposePostcond) {
  VerificationSession s(combinedSource({"transposeNaive"}, 16));
  CheckOptions o;
  o.method = Method::NonParameterized;
  o.width = 16;
  o.grid = encode::GridConfig{2, 2, 2, 2, 1};
  Report r = s.postconditions("transposeNaive", o);
  EXPECT_EQ(r.outcome, Outcome::Verified) << r.str();
}

TEST(RaceCheckerTest, CorpusKernelsAreRaceFree) {
  for (const char* name : {"transposeOpt", "reduceMod", "reduceStrided"}) {
    VerificationSession s(combinedSource({name}, 8));
    Report r = s.races(name, paramOpts(8));
    EXPECT_EQ(r.outcome, Outcome::Verified) << name << ": " << r.str();
  }
}

TEST(RaceCheckerTest, RacyHistogramFlagged) {
  VerificationSession s(combinedSource({"racyHistogram"}, 8));
  Report r = s.races("racyHistogram", paramOpts(8));
  EXPECT_EQ(r.outcome, Outcome::BugFound) << r.str();
  EXPECT_NE(r.detail.find("race"), std::string::npos);
}

TEST(RaceCheckerTest, MissingBarrierIntroducesRace) {
  // Producer/consumer without the separating barrier: thread t writes slot
  // t while its neighbour reads it.
  const char* racy = R"(
void shiftNoBarrier(int *out, int *in) {
  __shared__ int s[bdim.x];
  s[tid.x] = in[tid.x];
  out[tid.x] = s[(tid.x + 1) % bdim.x];
}
)";
  VerificationSession s(racy);
  Report r = s.races("shiftNoBarrier", paramOpts(8));
  EXPECT_EQ(r.outcome, Outcome::BugFound) << r.str();

  // With the barrier restored the same kernel is race-free.
  const char* fixed = R"(
void shiftWithBarrier(int *out, int *in) {
  __shared__ int s[bdim.x];
  s[tid.x] = in[tid.x];
  __syncthreads();
  out[tid.x] = s[(tid.x + 1) % bdim.x];
}
)";
  VerificationSession s2(fixed);
  Report r2 = s2.races("shiftWithBarrier", paramOpts(8));
  EXPECT_EQ(r2.outcome, Outcome::Verified) << r2.str();
}

TEST(PerfCheckerTest, NaiveTransposeIsUncoalesced) {
  VerificationSession s(combinedSource({"transposeNaive"}, 8));
  Report r = s.performance("transposeNaive", paramOpts(8));
  EXPECT_EQ(r.outcome, Outcome::BugFound) << r.str();
  EXPECT_NE(r.detail.find("non-coalesced"), std::string::npos) << r.str();
}

TEST(PerfCheckerTest, PaddedTransposeCleanAt16x16) {
  // The padded tile removes bank conflicts for the canonical 16x16 block
  // (pitch 17 is odd); the optimized kernel is fully clean there.
  VerificationSession s(combinedSource({"transposeOpt"}, 16));
  CheckOptions o = paramOpts(16);
  o.concretize = {{"bdim.x", 16}, {"bdim.y", 16}, {"bdim.z", 1}};
  Report r = s.performance("transposeOpt", o);
  EXPECT_EQ(r.outcome, Outcome::Verified) << r.str();
}

TEST(PerfCheckerTest, StridedReductionHasBankConflicts) {
  // Needs a block of 64 threads (stride 2k >= 16), hence width 16.
  VerificationSession s(combinedSource({"reduceStrided"}, 16));
  CheckOptions o = paramOpts(16);
  o.concretize = {{"bdim.x", 64}, {"bdim.y", 1}, {"bdim.z", 1}};
  Report r = s.performance("reduceStrided", o);
  EXPECT_EQ(r.outcome, Outcome::BugFound) << r.str();
  EXPECT_NE(r.detail.find("bank conflict"), std::string::npos) << r.str();
}

TEST(PerfCheckerTest, SequentialReductionConflictFree) {
  VerificationSession s(combinedSource({"reduceSequential"}, 16));
  CheckOptions o = paramOpts(16);
  o.concretize = {{"bdim.x", 64}, {"bdim.y", 1}, {"bdim.z", 1}};
  Report r = s.performance("reduceSequential", o);
  EXPECT_EQ(r.outcome, Outcome::Verified) << r.str();
}

}  // namespace
}  // namespace pugpara::check
