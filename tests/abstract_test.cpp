// Tests for the Tier 0 abstract domain (src/abstract/): affine extraction,
// the interval x stride/congruence constraint system, the prefilter facade,
// and the cone-of-influence slicer. The last test is the one that matters
// most: a randomized soundness cross-check — whenever the prefilter claims
// Unsat, Z3 must agree on the identical conjunction.
#include <gtest/gtest.h>

#include <vector>

#include "abstract/affine.h"
#include "abstract/domain.h"
#include "abstract/prefilter.h"
#include "expr/context.h"
#include "smt/solver.h"
#include "support/rng.h"

namespace pugpara::abstract {
namespace {

using expr::Context;
using expr::Expr;
using expr::Kind;
using expr::Sort;

Sort bv16() { return Sort::bv(16); }

TEST(AffineTest, LinearArithmeticDistributes) {
  Context ctx;
  AffineExtractor ex;
  const Expr x = ctx.var("x", bv16());
  const Expr y = ctx.var("y", bv16());
  // 3*x + 2*y + 5  ==  x + x + x + (y << 1) + 5
  const Expr e = ctx.mkAdd(
      ctx.mkAdd(ctx.mkAdd(x, x), ctx.mkAdd(x, ctx.mkShl(y, ctx.bvVal(1, 16)))),
      ctx.bvVal(5, 16));
  const AffineForm f = ex.extract(e);
  ASSERT_EQ(f.constant, 5u);
  ASSERT_EQ(f.terms.size(), 2u);
  EXPECT_EQ(f.terms[0].coeff + f.terms[1].coeff, 5u);  // {3, 2}
}

TEST(AffineTest, SubtractionCancelsExactly) {
  Context ctx;
  AffineExtractor ex;
  const Expr x = ctx.var("x", bv16());
  const Expr y = ctx.var("y", bv16());
  const Expr e = ctx.mkSub(ctx.mkAdd(x, y), ctx.mkAdd(y, x));
  const AffineForm f = ex.extract(e);
  EXPECT_TRUE(f.isConstant());
  EXPECT_EQ(f.constant, 0u);
}

TEST(AffineTest, OpaqueFallbackNeverFails) {
  Context ctx;
  AffineExtractor ex;
  const Expr x = ctx.var("x", bv16());
  const Expr y = ctx.var("y", bv16());
  const Expr e = ctx.mkAdd(ctx.mkURem(x, y), ctx.bvVal(7, 16));
  const AffineForm f = ex.extract(e);
  ASSERT_EQ(f.terms.size(), 1u);
  EXPECT_EQ(f.constant, 7u);
  EXPECT_EQ(f.terms[0].coeff, 1u);
  EXPECT_EQ(f.terms[0].node->kind, Kind::BvURem);
}

TEST(AffineTest, ZeroExtIsStripped) {
  Context ctx;
  AffineExtractor ex;
  const Expr x = ctx.var("x8", Sort::bv(8));
  const AffineForm f = ex.extract(ctx.mkZeroExt(x, 8));
  ASSERT_EQ(f.terms.size(), 1u);
  EXPECT_EQ(f.terms[0].node, x.node());  // the 8-bit node, not the wrapper
  EXPECT_EQ(f.width, 16u);
}

TEST(DomainTest, ComparisonsNarrowRanges) {
  Context ctx;
  AffineExtractor ex;
  ConstraintSystem cs(ex);
  const Expr tx = ctx.var("tx", bv16());
  cs.add(ctx.mkUlt(tx, ctx.bvVal(8, 16)));
  EXPECT_FALSE(cs.provesUnsat());
  EXPECT_LE(cs.rangeOf(tx.node()).hi, 7u);
}

TEST(DomainTest, StrideRuleSeparatesParities) {
  Context ctx;
  AffineExtractor ex;
  ConstraintSystem cs(ex);
  const Expr tx = ctx.var("tx", bv16());
  const Expr ty = ctx.var("ty", bv16());
  const Expr two = ctx.bvVal(2, 16);
  // 2*tx == 2*ty + 1 has no solution mod 2^16 (even vs odd).
  cs.add(ctx.mkEq(ctx.mkMul(two, tx),
                  ctx.mkAdd(ctx.mkMul(two, ty), ctx.bvVal(1, 16))));
  EXPECT_TRUE(cs.provesUnsat());
}

TEST(DomainTest, IntervalRuleSeparatesOffsetPair) {
  Context ctx;
  AffineExtractor ex;
  ConstraintSystem cs(ex);
  const Expr tx = ctx.var("tx", bv16());
  // tx < 100 and tx + 1 == 0 cannot both hold: tx+1 in [1,100], no wrap.
  cs.add(ctx.mkUlt(tx, ctx.bvVal(100, 16)));
  cs.add(ctx.mkEq(ctx.mkAdd(tx, ctx.bvVal(1, 16)), ctx.bvVal(0, 16)));
  EXPECT_TRUE(cs.provesUnsat());
}

TEST(DomainTest, GuardBindingContradictsDistinctConstant) {
  Context ctx;
  AffineExtractor ex;
  ConstraintSystem cs(ex);
  const Expr tx = ctx.var("tx", bv16());
  cs.add(ctx.mkEq(tx, ctx.bvVal(0, 16)));
  cs.add(ctx.mkEq(ctx.mkAdd(tx, ctx.bvVal(0, 16)), ctx.bvVal(3, 16)));
  EXPECT_TRUE(cs.provesUnsat());
}

TEST(DomainTest, NestedDistinctnessClauseIsRefuted) {
  // Regression: distinctFrom() emits a three-level nested binary Or. All
  // disjuncts must be collected through the nesting — a residual Or
  // disjunct would make the clause unrefutable.
  Context ctx;
  AffineExtractor ex;
  ConstraintSystem cs(ex);
  const Expr ax = ctx.var("ax", bv16()), bx = ctx.var("bx", bv16());
  const Expr ay = ctx.var("ay", bv16()), by = ctx.var("by", bv16());
  const Expr az = ctx.var("az", bv16()), bz = ctx.var("bz", bv16());
  const Expr clause = ctx.mkOr(
      ctx.mkOr(ctx.mkNe(ax, bx), ctx.mkNe(ay, by)),
      ctx.mkOr(ctx.mkNe(az, bz), ctx.mkNe(ax, bx)));
  cs.add(clause);
  cs.add(ctx.mkEq(ax, bx));
  cs.add(ctx.mkEq(ay, ctx.bvVal(0, 16)));
  cs.add(ctx.mkEq(by, ctx.bvVal(0, 16)));
  cs.add(ctx.mkEq(az, bz));
  EXPECT_TRUE(cs.provesUnsat());
}

TEST(DomainTest, SymbolicBoundSeparatesStridedPair) {
  // The reduceSequential shape: both threads bounded by k (tx < k), the
  // second access lands at ty + k. tx == ty + k then needs tx >= k.
  Context ctx;
  AffineExtractor ex;
  ConstraintSystem cs(ex);
  const Expr tx = ctx.var("tx", bv16());
  const Expr ty = ctx.var("ty", bv16());
  const Expr k = ctx.var("k", bv16());
  cs.add(ctx.mkUlt(tx, k));
  cs.add(ctx.mkUlt(ty, k));
  // k != 0 and k & (k-1) == 0: power of two, so k <= 2^15 and ty + k
  // cannot wrap.
  cs.add(ctx.mkNe(k, ctx.bvVal(0, 16)));
  cs.add(ctx.mkEq(ctx.mkBvAnd(k, ctx.mkSub(k, ctx.bvVal(1, 16))),
                  ctx.bvVal(0, 16)));
  cs.add(ctx.mkEq(tx, ctx.mkAdd(ty, k)));
  EXPECT_TRUE(cs.provesUnsat());
}

TEST(DomainTest, SatisfiableSystemIsNotClaimedUnsat) {
  Context ctx;
  AffineExtractor ex;
  ConstraintSystem cs(ex);
  const Expr tx = ctx.var("tx", bv16());
  const Expr ty = ctx.var("ty", bv16());
  cs.add(ctx.mkUlt(tx, ctx.bvVal(32, 16)));
  cs.add(ctx.mkUlt(ty, ctx.bvVal(32, 16)));
  cs.add(ctx.mkEq(ctx.mkAdd(tx, ctx.bvVal(1, 16)), ty));
  EXPECT_FALSE(cs.provesUnsat());
}

TEST(PrefilterTest, FlattenAndDropsTrueAndDuplicates) {
  Context ctx;
  const Expr p = ctx.var("p", Sort::boolSort());
  const Expr q = ctx.var("q", Sort::boolSort());
  std::vector<Expr> out;
  flattenAnd(ctx.mkAnd(ctx.mkAnd(p, ctx.top()), ctx.mkAnd(q, p)), out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(PrefilterTest, PrefixPlusAssumptionsDischarge) {
  // A miniature race pair: one shared prefix (domains + distinctness),
  // two queries — the disjoint pair discharges, the real overlap does not.
  Context ctx;
  Prefilter pf;
  const Expr txA = ctx.var("txA", bv16());
  const Expr txB = ctx.var("txB", bv16());
  std::vector<Expr> prefix = {
      ctx.mkUlt(txA, ctx.bvVal(64, 16)),
      ctx.mkUlt(txB, ctx.bvVal(64, 16)),
      ctx.mkNe(txA, txB),
  };
  pf.setPrefix(prefix);
  // sdata[txA] vs sdata[txB]: distinct threads, same address — impossible.
  const Expr sameAddr[] = {ctx.mkEq(txA, txB)};
  EXPECT_TRUE(pf.provesUnsat(sameAddr));
  // sdata[txA] vs sdata[txB + 1]: adjacent threads do collide.
  const Expr offByOne[] = {
      ctx.mkEq(txA, ctx.mkAdd(txB, ctx.bvVal(1, 16)))};
  EXPECT_FALSE(pf.provesUnsat(offByOne));
}

TEST(CoiSlicerTest, SliceKeepsOnlyConnectedConjuncts) {
  Context ctx;
  CoiSlicer slicer;
  const Expr a = ctx.var("a", bv16()), b = ctx.var("b", bv16());
  const Expr c = ctx.var("c", bv16()), d = ctx.var("d", bv16());
  std::vector<Expr> prefix = {
      ctx.mkUlt(a, b),                    // component {a, b}
      ctx.mkUlt(c, d),                    // component {c, d}
      ctx.mkEq(ctx.bvVal(1, 16), ctx.bvVal(1, 16)),
  };
  // The var-free conjunct simplifies to true and is dropped by the builder;
  // keep the list honest.
  prefix.resize(2);
  slicer.build(prefix);
  const Expr query[] = {ctx.mkUlt(a, ctx.bvVal(5, 16))};
  const std::vector<size_t> rel = slicer.relevant(query);
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel[0], 0u);
}

TEST(CoiSlicerTest, DisjunctionDoesNotGlueComponents) {
  Context ctx;
  CoiSlicer slicer;
  const Expr a = ctx.var("a", bv16()), b = ctx.var("b", bv16());
  std::vector<Expr> prefix = {
      ctx.mkUlt(a, ctx.bvVal(9, 16)),
      ctx.mkUlt(b, ctx.bvVal(9, 16)),
      ctx.mkOr(ctx.mkNe(a, ctx.bvVal(0, 16)), ctx.mkNe(b, ctx.bvVal(0, 16))),
  };
  slicer.build(prefix);
  const Expr query[] = {ctx.mkEq(a, ctx.bvVal(3, 16))};
  const std::vector<size_t> rel = slicer.relevant(query);
  // a's domain and the Or (it touches a) — but not b's domain.
  ASSERT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel[0], 0u);
  EXPECT_EQ(rel[1], 2u);
}

// The soundness cross-check. Random conjunction shapes drawn from the same
// vocabulary the checkers produce (domains, affine equalities and
// disequalities, comparisons, distinctness disjunctions). Whenever the
// prefilter answers "Unsat", Z3 must answer Unsat on the identical
// conjunction. The reverse direction is precision, not soundness, and is
// intentionally unchecked.
TEST(PrefilterSoundnessTest, RandomSystemsAgreeWithZ3OnUnsat) {
  SplitMix64 rng(0xab57ac7);
  int claimed = 0;
  for (int iter = 0; iter < 300; ++iter) {
    Context ctx;
    const uint32_t w = 8;
    std::vector<Expr> vars;
    for (const char* name : {"t0", "t1", "t2", "k"})
      vars.push_back(ctx.var(name, Sort::bv(w)));
    auto term = [&]() -> Expr {
      Expr t = vars[rng.below(vars.size())];
      if (rng.below(3) == 0)
        t = ctx.mkMul(ctx.bvVal(1 + rng.below(6), w), t);
      if (rng.below(3) == 0) t = ctx.mkAdd(t, ctx.bvVal(rng.below(16), w));
      if (rng.below(4) == 0) t = ctx.mkAdd(t, vars[rng.below(vars.size())]);
      return t;
    };
    std::vector<Expr> conjuncts;
    const size_t n = 3 + rng.below(6);
    for (size_t i = 0; i < n; ++i) {
      switch (rng.below(5)) {
        case 0: conjuncts.push_back(ctx.mkUlt(term(), term())); break;
        case 1: conjuncts.push_back(ctx.mkEq(term(), term())); break;
        case 2: conjuncts.push_back(ctx.mkNe(term(), term())); break;
        case 3:
          conjuncts.push_back(
              ctx.mkEq(term(), ctx.bvVal(rng.below(8), w)));
          break;
        default:
          conjuncts.push_back(ctx.mkOr(ctx.mkNe(term(), term()),
                                       ctx.mkOr(ctx.mkNe(term(), term()),
                                                ctx.mkNe(term(), term()))));
          break;
      }
    }
    Prefilter pf;
    pf.setPrefix(conjuncts);
    if (!pf.provesUnsat({})) continue;
    ++claimed;
    auto solver = smt::makeZ3Solver();
    for (Expr c : conjuncts) solver->add(c);
    EXPECT_EQ(solver->check(), smt::CheckResult::Unsat)
        << "prefilter claimed Unsat on a satisfiable system (iter " << iter
        << ")";
  }
  // The generator must actually exercise the Unsat-claiming paths.
  EXPECT_GT(claimed, 5);
}

}  // namespace
}  // namespace pugpara::abstract
