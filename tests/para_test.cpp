// Tests for the parameterized checker (paper Sec. IV): CA extraction,
// monotonicity-based quantifier elimination, backward value resolution, and
// the equivalence / postcondition / assertion VC generators — all with an
// arbitrary (symbolic) number of threads.
#include <gtest/gtest.h>

#include "lang/parser.h"
#include "para/vcgen.h"
#include "smt/solver.h"

namespace pugpara::para {
namespace {

using expr::Expr;
using smt::CheckResult;

struct Extracted {
  std::unique_ptr<lang::Program> prog;
  std::unique_ptr<expr::Context> ctxPtr = std::make_unique<expr::Context>();
  SymbolicConfig cfg;
  std::vector<KernelSummary> sums;

  [[nodiscard]] expr::Context& context() const { return *ctxPtr; }
};

Extracted extract(const std::string& src, encode::EncodeOptions opt = {}) {
  Extracted e;
  e.prog = lang::parseAndAnalyze(src);
  e.cfg = SymbolicConfig::create(*e.ctxPtr, opt);
  const char* prefixes[] = {"s", "t", "u"};
  for (size_t i = 0; i < e.prog->kernels.size(); ++i)
    e.sums.push_back(extractSummary(*e.ctxPtr, *e.prog->kernels[i], e.cfg, opt,
                                    prefixes[i % 3]));
  return e;
}

CheckResult solveVcs(expr::Context& ctx, const ParamVcSet& set,
                     uint32_t timeoutMs = 30000) {
  (void)ctx;
  // Sat if ANY VC is satisfiable (a bug in any segment is a bug).
  bool anyUnknown = false;
  for (const auto& vc : set.vcs) {
    auto solver = smt::makeZ3Solver();
    solver->setTimeoutMs(timeoutMs);
    solver->add(vc.formula);
    CheckResult r = solver->check();
    if (r == CheckResult::Sat) return CheckResult::Sat;
    if (r == CheckResult::Unknown) anyUnknown = true;
  }
  return anyUnknown ? CheckResult::Unknown : CheckResult::Unsat;
}

// ---- CA extraction -----------------------------------------------------------

TEST(CaExtractTest, SimpleKernelProducesOneCa) {
  auto e = extract("void k(int *a) { a[tid.x] = tid.x + 1; }");
  const KernelSummary& s = e.sums[0];
  ASSERT_EQ(s.segments.size(), 1u);
  ASSERT_EQ(s.segments[0].bis.size(), 1u);
  const BiSummary& bi = s.segments[0].bis[0];
  ASSERT_EQ(bi.cas.size(), 1u);
  const auto& cas = bi.cas.begin()->second;
  ASSERT_EQ(cas.size(), 1u);
  EXPECT_TRUE(cas[0].guard.isTrue());
}

TEST(CaExtractTest, GuardedWriteCarriesBranchCondition) {
  auto e = extract(
      "void k(int *a, int n) { if (tid.x < n) a[tid.x] = 1; }");
  const auto& cas = e.sums[0].segments[0].bis[0].cas.begin()->second;
  ASSERT_EQ(cas.size(), 1u);
  EXPECT_FALSE(cas[0].guard.isTrue());
}

TEST(CaExtractTest, BarrierSplitsIntervals) {
  auto e = extract(R"(
void k(int *a) {
  __shared__ int s[bdim.x];
  s[tid.x] = a[tid.x];
  __syncthreads();
  a[tid.x] = s[tid.x] + 1;
}
)");
  ASSERT_EQ(e.sums[0].segments.size(), 1u);
  EXPECT_EQ(e.sums[0].segments[0].bis.size(), 2u);
}

TEST(CaExtractTest, OwnWriteOverlayWithinInterval) {
  // The second statement reads the thread's own write; the CA value must
  // reflect it without a barrier.
  auto e = extract(R"(
void k(int *a) {
  a[tid.x] = 5;
  a[tid.x] = a[tid.x] + 1;
}
)");
  const auto& cas = e.sums[0].segments[0].bis[0].cas.begin()->second;
  ASSERT_EQ(cas.size(), 2u);
  // Resolving the final value at tid.x should give 6 when matched; verify
  // through the solver below instead of syntactically here.
  SUCCEED();
}

TEST(CaExtractTest, BarrierLoopBecomesLoopSegment) {
  auto e = extract(R"(
void k(int *g, int *in) {
  __shared__ int s[bdim.x];
  s[tid.x] = in[tid.x];
  __syncthreads();
  for (unsigned int k = 1; k < bdim.x; k *= 2) {
    if (tid.x % (2 * k) == 0) s[tid.x] += s[tid.x + k];
    __syncthreads();
  }
  if (tid.x == 0) g[bid.x] = s[0];
}
)");
  const KernelSummary& s = e.sums[0];
  ASSERT_EQ(s.segments.size(), 3u);
  EXPECT_FALSE(s.segments[0].loop.has_value());
  ASSERT_TRUE(s.segments[1].loop.has_value());
  EXPECT_FALSE(s.segments[2].loop.has_value());
  EXPECT_EQ(s.segments[1].loop->bodyBis.size(), 1u);
  EXPECT_TRUE(s.hasLoops());
}

// ---- Monotonicity analysis ---------------------------------------------------

TEST(MonotoneTest, LinearAddressIsMonotone) {
  expr::Context ctx;
  encode::EncodeOptions opt;
  opt.width = 16;
  SymbolicConfig cfg = SymbolicConfig::create(ctx, opt);
  MonotoneAnalyzer mono(ctx, cfg.constraints);
  Expr t = ctx.var("t", expr::Sort::bv(16));
  Expr a = ctx.var("a", expr::Sort::bv(16));
  // g(t) = 2t + 3, guard true.
  Expr g = ctx.mkAdd(ctx.mkMul(ctx.bvVal(2, 16), t), ctx.bvVal(3, 16));
  auto cert = mono.certificate(ctx.top(), g, t, ctx.bvVal(8, 16), a);
  ASSERT_TRUE(cert.has_value());
  // The certificate must hold exactly for non-written addresses: check a=5
  // (written: t=1) is refuted and a=4 (a gap) is satisfiable.
  auto solver = smt::makeZ3Solver();
  solver->add(cfg.constraints);
  solver->push();
  solver->add(ctx.mkEq(a, ctx.bvVal(5, 16)));
  solver->add(*cert);
  EXPECT_EQ(solver->check(), CheckResult::Unsat);
  solver->pop();
  solver->add(ctx.mkEq(a, ctx.bvVal(4, 16)));
  solver->add(*cert);
  EXPECT_EQ(solver->check(), CheckResult::Sat);
}

TEST(MonotoneTest, NonMonotoneAddressIsRejected) {
  expr::Context ctx;
  encode::EncodeOptions opt;
  SymbolicConfig cfg = SymbolicConfig::create(ctx, opt);
  MonotoneAnalyzer mono(ctx, cfg.constraints);
  Expr t = ctx.var("t", expr::Sort::bv(16));
  Expr a = ctx.var("a", expr::Sort::bv(16));
  // g(t) = t % 4 is not monotone on [0, 16).
  Expr g = ctx.mkURem(t, ctx.bvVal(4, 16));
  auto cert = mono.certificate(ctx.top(), g, t, ctx.bvVal(16, 16), a);
  EXPECT_FALSE(cert.has_value());
}

TEST(MonotoneTest, GuardedPrefixMonotone) {
  // g(t) = t with guard t < n: the classic coalesced write.
  expr::Context ctx;
  encode::EncodeOptions opt;
  SymbolicConfig cfg = SymbolicConfig::create(ctx, opt);
  MonotoneAnalyzer mono(ctx, cfg.constraints);
  Expr t = ctx.var("t", expr::Sort::bv(16));
  Expr n = ctx.var("n", expr::Sort::bv(16));
  Expr a = ctx.var("a", expr::Sort::bv(16));
  auto cert = mono.certificate(ctx.mkUlt(t, n), t, t, cfg.bdimX, a);
  EXPECT_TRUE(cert.has_value());
}

// ---- Parameterized postconditions --------------------------------------------

TEST(ParamPostcondTest, PerThreadWriteProvedForAllThreadCounts) {
  // a[tid.x] = tid.x + 1 over ONE symbolic-size block; the postcondition
  // holds for any bdim.x — this is checkable by no fixed-n method.
  auto e = extract(R"(
void k(int *a) {
  assume(gdim.x == 1 && gdim.y == 1 && bdim.y == 1 && bdim.z == 1);
  a[tid.x] = tid.x + 1;
  int i;
  postcond(i < bdim.x => a[i] == i + 1);
}
)");
  encode::EncodeOptions opt;
  auto vcs = buildPostcondVcs(e.context(), e.sums[0], opt, FrameMode::MonotoneQe);
  EXPECT_TRUE(vcs.exact);
  EXPECT_EQ(solveVcs(e.context(), vcs), CheckResult::Unsat);
  EXPECT_GT(vcs.stats.qeCerts, 0u);
}

TEST(ParamPostcondTest, OffByOneBugFoundParametrically) {
  auto e = extract(R"(
void k(int *a) {
  assume(gdim.x == 1 && gdim.y == 1 && bdim.y == 1 && bdim.z == 1);
  a[tid.x] = tid.x + 2;
  int i;
  postcond(i < bdim.x => a[i] == i + 1);
}
)");
  encode::EncodeOptions opt;
  auto vcs = buildPostcondVcs(e.context(), e.sums[0], opt, FrameMode::MonotoneQe);
  EXPECT_EQ(solveVcs(e.context(), vcs), CheckResult::Sat);
}

TEST(ParamPostcondTest, FrameCellsKeepOldValue) {
  // Cells above n are untouched; only the exact-frame encoding can prove
  // a[i] == i for the unwritten region.
  auto e = extract(R"(
void k(int *a, int n) {
  assume(gdim.x == 1 && gdim.y == 1 && bdim.y == 1 && bdim.z == 1);
  assume(n < bdim.x);
  if (tid.x < n) a[tid.x] = 7;
  int i;
  postcond((n <= i && i < bdim.x) => a[i] == a[i]);
}
)");
  encode::EncodeOptions opt;
  auto vcs = buildPostcondVcs(e.context(), e.sums[0], opt, FrameMode::MonotoneQe);
  EXPECT_EQ(solveVcs(e.context(), vcs), CheckResult::Unsat);
}

// ---- Parameterized assertion checking ----------------------------------------

TEST(ParamAssertTest, ViolableAssertIsSat) {
  auto e = extract("void k(int *a, int n) { assert(tid.x < n); a[0] = 0; }");
  auto vcs = buildAssertVcs(e.context(), e.sums[0], FrameMode::MonotoneQe);
  ASSERT_EQ(vcs.vcs.size(), 1u);
  EXPECT_EQ(solveVcs(e.context(), vcs), CheckResult::Sat);
}

TEST(ParamAssertTest, ValidAssertIsUnsat) {
  auto e = extract(
      "void k(int *a) { assert(tid.x < bdim.x); a[tid.x] = 0; }");
  auto vcs = buildAssertVcs(e.context(), e.sums[0], FrameMode::MonotoneQe);
  EXPECT_EQ(solveVcs(e.context(), vcs), CheckResult::Unsat);
}

// ---- Parameterized equivalence ------------------------------------------------

constexpr const char* kParamNaive = R"(
void naiveTranspose(int *odata, int *idata, int width, int height) {
  assume(width == gdim.x * bdim.x && height == gdim.y * bdim.y);
  assume(bdim.x == bdim.y && bdim.z == 1);
  assume(width >= 0 && width <= 15 && height >= 0 && height <= 15);
  int xIndex = bid.x * bdim.x + tid.x;
  int yIndex = bid.y * bdim.y + tid.y;
  if (xIndex < width && yIndex < height) {
    int index_in = xIndex + width * yIndex;
    int index_out = yIndex + height * xIndex;
    odata[index_out] = idata[index_in];
  }
}
)";

constexpr const char* kParamOpt = R"(
void optimizedTranspose(int *odata, int *idata, int width, int height) {
  assume(width == gdim.x * bdim.x && height == gdim.y * bdim.y);
  assume(bdim.x == bdim.y && bdim.z == 1);
  assume(width >= 0 && width <= 15 && height >= 0 && height <= 15);
  __shared__ int block[bdim.x][bdim.x + 1];
  int xIndex = bid.x * bdim.x + tid.x;
  int yIndex = bid.y * bdim.y + tid.y;
  if ((xIndex < width) && (yIndex < height)) {
    int index_in = yIndex * width + xIndex;
    block[tid.y][tid.x] = idata[index_in];
  }
  __syncthreads();
  xIndex = bid.y * bdim.y + tid.x;
  yIndex = bid.x * bdim.x + tid.y;
  if ((xIndex < height) && (yIndex < width)) {
    int index_out = yIndex * height + xIndex;
    odata[index_out] = block[tid.x][tid.y];
  }
}
)";

TEST(ParamEquivalenceTest, TransposeEquivalentForAllConfigs8bPlusC) {
  // The paper's "+C" configuration (Table II): the block extent is
  // concretized, the grid (and hence the thread count) stays symbolic.
  encode::EncodeOptions opt;
  opt.width = 8;
  opt.concretize["bdim.x"] = 4;
  opt.concretize["bdim.y"] = 4;
  opt.concretize["bdim.z"] = 1;
  auto e = extract(std::string(kParamNaive) + kParamOpt, opt);
  auto vcs =
      buildEquivalenceVcs(e.context(), e.sums[0], e.sums[1], FrameMode::MonotoneQe);
  EXPECT_EQ(solveVcs(e.context(), vcs, 120000), CheckResult::Unsat);
}

TEST(ParamEquivalenceTest, TransposeAddressBugFound) {
  std::string buggy = kParamOpt;
  // Inject the classic padding bug: drop the +1 and swap the tile read.
  size_t pos = buggy.find("block[tid.x][tid.y]");
  ASSERT_NE(pos, std::string::npos);
  buggy.replace(pos, strlen("block[tid.x][tid.y]"), "block[tid.y][tid.x]");
  encode::EncodeOptions opt;
  opt.width = 8;
  auto e = extract(std::string(kParamNaive) + buggy, opt);
  auto vcs =
      buildEquivalenceVcs(e.context(), e.sums[0], e.sums[1], FrameMode::BugHunt);
  EXPECT_EQ(solveVcs(e.context(), vcs, 60000), CheckResult::Sat);
}

TEST(ParamEquivalenceTest, ReductionLoopAlignedEquivalence) {
  const char* mod = R"(
void reduceMod(int *g_odata, int *g_idata) {
  assume(bdim.y == 1 && bdim.z == 1 && gdim.y == 1);
  __shared__ int sdata[bdim.x];
  sdata[tid.x] = g_idata[bid.x * bdim.x + tid.x];
  __syncthreads();
  for (unsigned int k = 1; k < bdim.x; k *= 2) {
    if ((tid.x % (2 * k)) == 0)
      sdata[tid.x] += sdata[tid.x + k];
    __syncthreads();
  }
  if (tid.x == 0) g_odata[bid.x] = sdata[0];
}
)";
  const char* strided = R"(
void reduceStrided(int *g_odata, int *g_idata) {
  assume(bdim.y == 1 && bdim.z == 1 && gdim.y == 1);
  __shared__ int sdata[bdim.x];
  sdata[tid.x] = g_idata[bid.x * bdim.x + tid.x];
  __syncthreads();
  for (unsigned int k = 1; k < bdim.x; k *= 2) {
    int index = 2 * k * tid.x;
    if (index < bdim.x)
      sdata[index] += sdata[index + k];
    __syncthreads();
  }
  if (tid.x == 0) g_odata[bid.x] = sdata[0];
}
)";
  encode::EncodeOptions opt;
  opt.width = 8;
  auto e = extract(std::string(mod) + strided, opt);
  auto vcs =
      buildEquivalenceVcs(e.context(), e.sums[0], e.sums[1], FrameMode::MonotoneQe);
  EXPECT_EQ(vcs.vcs.size(), 3u);  // load segment, loop body, epilogue
  EXPECT_EQ(solveVcs(e.context(), vcs, 60000), CheckResult::Unsat);
}

TEST(ParamEquivalenceTest, ReductionBodyBugFound) {
  const char* mod = R"(
void reduceMod(int *g_odata, int *g_idata) {
  assume(bdim.y == 1 && bdim.z == 1 && gdim.y == 1);
  __shared__ int sdata[bdim.x];
  sdata[tid.x] = g_idata[bid.x * bdim.x + tid.x];
  __syncthreads();
  for (unsigned int k = 1; k < bdim.x; k *= 2) {
    if ((tid.x % (2 * k)) == 0)
      sdata[tid.x] += sdata[tid.x + k];
    __syncthreads();
  }
  if (tid.x == 0) g_odata[bid.x] = sdata[0];
}
)";
  const char* buggy = R"(
void reduceBuggy(int *g_odata, int *g_idata) {
  assume(bdim.y == 1 && bdim.z == 1 && gdim.y == 1);
  __shared__ int sdata[bdim.x];
  sdata[tid.x] = g_idata[bid.x * bdim.x + tid.x];
  __syncthreads();
  for (unsigned int k = 1; k < bdim.x; k *= 2) {
    int index = 2 * k * tid.x;
    if (index < bdim.x)
      sdata[index] += sdata[index + k + 1];  // bug: reads the wrong cell
    __syncthreads();
  }
  if (tid.x == 0) g_odata[bid.x] = sdata[0];
}
)";
  encode::EncodeOptions opt;
  opt.width = 8;
  auto e = extract(std::string(mod) + buggy, opt);
  auto vcs =
      buildEquivalenceVcs(e.context(), e.sums[0], e.sums[1], FrameMode::BugHunt);
  EXPECT_EQ(solveVcs(e.context(), vcs, 60000), CheckResult::Sat);
}

TEST(ParamEquivalenceTest, CommutativeHeaderAlignment) {
  // Same body, reversed iteration order: alignment succeeds with the
  // commutativity caveat and the per-iteration check passes.
  const char* up = R"(
void reduceUp(int *g, int *in) {
  assume(bdim.y == 1 && bdim.z == 1 && gdim.y == 1);
  __shared__ int s[bdim.x];
  s[tid.x] = in[tid.x];
  __syncthreads();
  for (unsigned int k = 1; k < bdim.x; k *= 2) {
    if ((tid.x % (2 * k)) == 0) s[tid.x] += s[tid.x + k];
    __syncthreads();
  }
  if (tid.x == 0) g[0] = s[0];
}
)";
  const char* down = R"(
void reduceDown(int *g, int *in) {
  assume(bdim.y == 1 && bdim.z == 1 && gdim.y == 1);
  __shared__ int s[bdim.x];
  s[tid.x] = in[tid.x];
  __syncthreads();
  for (unsigned int k = bdim.x / 2; k > 0; k = k / 2) {
    if ((tid.x % (2 * k)) == 0) s[tid.x] += s[tid.x + k];
    __syncthreads();
  }
  if (tid.x == 0) g[0] = s[0];
}
)";
  encode::EncodeOptions opt;
  opt.width = 8;
  auto e = extract(std::string(up) + down, opt);
  auto vcs =
      buildEquivalenceVcs(e.context(), e.sums[0], e.sums[1], FrameMode::MonotoneQe);
  EXPECT_FALSE(vcs.exact);  // commutativity caveat
  ASSERT_FALSE(vcs.caveats.empty());
  EXPECT_EQ(solveVcs(e.context(), vcs, 60000), CheckResult::Unsat);
}

TEST(ParamEquivalenceTest, MisalignedLoopStructureThrows) {
  const char* loopy = R"(
void a(int *g) {
  __shared__ int s[bdim.x];
  for (unsigned int k = 1; k < bdim.x; k *= 2) {
    s[tid.x] = k;
    __syncthreads();
  }
  g[tid.x] = s[tid.x];
}
)";
  const char* flat = R"(
void b(int *g) {
  g[tid.x] = 1;
}
)";
  encode::EncodeOptions opt;
  auto e = extract(std::string(loopy) + flat, opt);
  EXPECT_THROW((void)buildEquivalenceVcs(e.context(), e.sums[0], e.sums[1],
                                         FrameMode::MonotoneQe),
               PugError);
}

}  // namespace
}  // namespace pugpara::para
