// Solver-backend tests. These run against Z3 always; once MiniSMT lands the
// shared suite below also runs against it (see SolverParamTest).
#include <gtest/gtest.h>

#include "expr/context.h"
#include "expr/eval.h"
#include "smt/solver.h"
#include "support/diagnostics.h"

namespace pugpara::smt {
namespace {

using expr::Context;
using expr::Expr;
using expr::Sort;

TEST(Z3SolverTest, TrivialSatUnsat) {
  Context ctx;
  auto s = makeZ3Solver();
  Expr x = ctx.var("x", Sort::bv(8));
  s->add(ctx.mkUlt(x, ctx.bvVal(10, 8)));
  EXPECT_EQ(s->check(), CheckResult::Sat);
  s->add(ctx.mkUlt(ctx.bvVal(20, 8), x));
  EXPECT_EQ(s->check(), CheckResult::Unsat);
}

TEST(Z3SolverTest, PushPopRestoresAssertions) {
  Context ctx;
  auto s = makeZ3Solver();
  Expr x = ctx.var("x", Sort::bv(8));
  s->add(ctx.mkEq(x, ctx.bvVal(3, 8)));
  s->push();
  s->add(ctx.mkEq(x, ctx.bvVal(4, 8)));
  EXPECT_EQ(s->check(), CheckResult::Unsat);
  s->pop();
  EXPECT_EQ(s->check(), CheckResult::Sat);
}

TEST(Z3SolverTest, ModelValuesSatisfyAssertions) {
  Context ctx;
  auto s = makeZ3Solver();
  Expr x = ctx.var("x", Sort::bv(16));
  Expr y = ctx.var("y", Sort::bv(16));
  Expr c1 = ctx.mkEq(ctx.mkAdd(x, y), ctx.bvVal(100, 16));
  Expr c2 = ctx.mkUlt(x, y);
  s->add(c1);
  s->add(c2);
  ASSERT_EQ(s->check(), CheckResult::Sat);
  auto m = s->model();
  const uint64_t xv = m->evalBv(x), yv = m->evalBv(y);
  // Replay the model through our own evaluator: both constraints must hold.
  expr::Env env;
  env.bindBv(x, xv);
  env.bindBv(y, yv);
  EXPECT_TRUE(expr::evalBool(c1, env));
  EXPECT_TRUE(expr::evalBool(c2, env));
}

TEST(Z3SolverTest, ArrayTheory) {
  Context ctx;
  auto s = makeZ3Solver();
  Sort arr = Sort::array(16, 16);
  Expr a = ctx.var("a", arr);
  Expr i = ctx.var("i", Sort::bv(16));
  Expr j = ctx.var("j", Sort::bv(16));
  // select(store(a, i, 5), j) == 5 with i != j and select(a, j) != 5: UNSAT
  // only if i == j forced; here it is SAT since j may differ... instead
  // assert the classic read-over-write axiom violation:
  Expr st = ctx.mkStore(a, i, ctx.bvVal(5, 16));
  s->add(ctx.mkEq(i, j));
  s->add(ctx.mkNe(ctx.mkSelect(st, j), ctx.bvVal(5, 16)));
  EXPECT_EQ(s->check(), CheckResult::Unsat);
}

TEST(Z3SolverTest, ArrayModelEvaluation) {
  Context ctx;
  auto s = makeZ3Solver();
  Sort arr = Sort::array(16, 16);
  Expr a = ctx.var("a", arr);
  s->add(ctx.mkEq(ctx.mkSelect(a, ctx.bvVal(3, 16)), ctx.bvVal(42, 16)));
  ASSERT_EQ(s->check(), CheckResult::Sat);
  auto m = s->model();
  EXPECT_EQ(m->evalBv(ctx.mkSelect(a, ctx.bvVal(3, 16))), 42u);
}

TEST(Z3SolverTest, NonLinearBitvectorArithmetic) {
  // The paper stresses that CUDA addresses are non-linear (tid * width);
  // the bit-vector theory must decide these (unlike the Omega test).
  Context ctx;
  auto s = makeZ3Solver();
  Expr x = ctx.var("x", Sort::bv(16));
  Expr y = ctx.var("y", Sort::bv(16));
  s->add(ctx.mkEq(ctx.mkMul(x, y), ctx.bvVal(12, 16)));
  s->add(ctx.mkUlt(ctx.bvVal(1, 16), x));
  s->add(ctx.mkUlt(ctx.bvVal(1, 16), y));
  s->add(ctx.mkUlt(x, ctx.bvVal(12, 16)));
  s->add(ctx.mkUlt(y, ctx.bvVal(12, 16)));
  ASSERT_EQ(s->check(), CheckResult::Sat);
  auto m = s->model();
  EXPECT_EQ((m->evalBv(x) * m->evalBv(y)) & 0xffff, 12u);
}

TEST(Z3SolverTest, QuantifiedFrameAxiom) {
  // The exact shape of Sec. IV-A's frame formula:
  //   (forall t. not(a = f(t) and c(t))) => odata[k] unchanged.
  Context ctx;
  auto s = makeZ3Solver();
  Expr t = ctx.var("t", Sort::bv(8));
  Expr a = ctx.var("a", Sort::bv(8));
  // f(t) = 2*t, c(t) = t < 4. A claim: a = 1 cannot be written (it's odd).
  Expr f = ctx.mkMul(ctx.bvVal(2, 8), t);
  Expr c = ctx.mkUlt(t, ctx.bvVal(4, 8));
  std::vector<Expr> bound = {t};
  Expr noWriter = ctx.mkForall(bound, ctx.mkNot(ctx.mkAnd(ctx.mkEq(a, f), c)));
  s->add(ctx.mkEq(a, ctx.bvVal(1, 8)));
  s->add(ctx.mkNot(noWriter));  // claim: some thread writes address 1
  EXPECT_EQ(s->check(), CheckResult::Unsat);
}

TEST(Z3SolverTest, TimeoutReturnsUnknownOrAnswer) {
  Context ctx;
  auto s = makeZ3Solver();
  s->setTimeoutMs(1);
  // A hard non-linear instance; with a 1ms budget Z3 usually gives Unknown,
  // but a fast answer is also acceptable — we only require no hang/crash.
  Expr x = ctx.var("x", Sort::bv(64));
  Expr y = ctx.var("y", Sort::bv(64));
  Expr z = ctx.var("z", Sort::bv(64));
  s->add(ctx.mkEq(ctx.mkMul(ctx.mkMul(x, y), z), ctx.bvVal(0xdeadbeefcafeULL, 64)));
  s->add(ctx.mkUlt(ctx.bvVal(1000000, 64), x));
  s->add(ctx.mkUlt(ctx.bvVal(1000000, 64), y));
  s->add(ctx.mkUlt(ctx.bvVal(1000000, 64), z));
  CheckResult r = s->check();
  SUCCEED() << "result: " << toString(r);
}

TEST(SolverFactoryTest, BothBackendsConstruct) {
  EXPECT_EQ(makeSolver(Backend::Z3)->name(), "z3");
  EXPECT_EQ(makeSolver(Backend::Mini)->name(), "minismt");
}

}  // namespace
}  // namespace pugpara::smt
