#!/usr/bin/env bash
# Serve-mode smoke: boots the daemon, round-trips the whole built-in corpus
# over the Unix socket, and checks the three properties the daemon must
# hold in production shape:
#   1. verdict equality — serve-mode outcomes == one-shot batch CLI outcomes
#   2. warm re-submission hits the in-process result memo (memoHits > 0)
#   3. a daemon *restart* on the same --cache-dir answers from disk
#      (memoHits > 0 again in a fresh process)
# plus an orderly shutdown via the shutdown op both times.
#
# Usage: scripts/serve_smoke.sh   (expects a completed default-preset build)
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=build/tools/pugpara
[[ -x "$BIN" ]] || { echo "serve_smoke: $BIN not built" >&2; exit 1; }

TMP=build/serve_smoke.tmp
rm -rf "$TMP"
mkdir -p "$TMP"
SOCK="$TMP/serve.sock"
TIMEOUT_MS="${PUGPARA_TIMEOUT_MS:-20000}"
CHECK_FLAGS=(--all --width 8 --backend mini --timeout "$TIMEOUT_MS")

SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
}
trap cleanup EXIT

start_daemon() {
  "$BIN" serve --socket "$SOCK" --cache-dir "$TMP/cache" \
    --jobs "$(nproc)" 2>>"$TMP/serve.log" &
  SERVER_PID=$!
  for _ in $(seq 1 50); do
    if "$BIN" submit --socket "$SOCK" --ping >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "serve_smoke: daemon did not come up" >&2
  exit 1
}

stop_daemon() {
  "$BIN" submit --socket "$SOCK" --shutdown >/dev/null
  wait "$SERVER_PID"
  SERVER_PID=""
}

# (kind, kernel) -> outcome triplets from either the batch CLI's --json
# document or the serve protocol's result-event lines (same embedded shape).
verdicts() {
  grep -oE '"kind":"[a-z]+","kernel":"[A-Za-z0-9_]+",("kernel2":"[A-Za-z0-9_]*",)?"report":\{"outcome":"[a-z-]+"' "$1" \
    | sort
}

memo_hits() {
  grep -oE '"event":"done".*"memoHits":[0-9]+' "$1" | grep -oE '[0-9]+$'
}

echo "== serve smoke: corpus dump =="
"$BIN" corpus --width 8 > "$TMP/corpus.pug"

echo "== serve smoke: batch CLI ground truth =="
"$BIN" "$TMP/corpus.pug" "${CHECK_FLAGS[@]}" --jobs "$(nproc)" --json \
  > "$TMP/batch.json" || [[ $? -le 2 ]]
verdicts "$TMP/batch.json" > "$TMP/batch.verdicts"
[[ -s "$TMP/batch.verdicts" ]] || { echo "serve_smoke: no batch verdicts" >&2; exit 1; }

echo "== serve smoke: daemon pass 1 (cold) + pass 2 (warm) =="
start_daemon
"$BIN" submit --socket "$SOCK" "$TMP/corpus.pug" "${CHECK_FLAGS[@]}" --json \
  > "$TMP/serve1.json" || [[ $? -le 2 ]]
"$BIN" submit --socket "$SOCK" "$TMP/corpus.pug" "${CHECK_FLAGS[@]}" --json \
  > "$TMP/serve2.json" || [[ $? -le 2 ]]
stop_daemon

echo "== serve smoke: daemon restart, pass 3 (disk-warm) =="
start_daemon
"$BIN" submit --socket "$SOCK" "$TMP/corpus.pug" "${CHECK_FLAGS[@]}" --json \
  > "$TMP/serve3.json" || [[ $? -le 2 ]]
stop_daemon

echo "== serve smoke: verdict equality =="
for pass in serve1 serve2 serve3; do
  verdicts "$TMP/$pass.json" > "$TMP/$pass.verdicts"
  if ! diff -u "$TMP/batch.verdicts" "$TMP/$pass.verdicts"; then
    echo "serve_smoke: FAIL: $pass verdicts differ from batch CLI" >&2
    exit 1
  fi
done
echo "   $(wc -l < "$TMP/batch.verdicts") checks agree across batch + 3 serve passes"

echo "== serve smoke: cache hit rates =="
WARM_HITS=$(memo_hits "$TMP/serve2.json")
DISK_HITS=$(memo_hits "$TMP/serve3.json")
echo "   warm-process memo hits: $WARM_HITS, disk-warm memo hits: $DISK_HITS"
if [[ "${WARM_HITS:-0}" -eq 0 ]]; then
  echo "serve_smoke: FAIL: warm re-submission produced no memo hits" >&2
  exit 1
fi
if [[ "${DISK_HITS:-0}" -eq 0 ]]; then
  echo "serve_smoke: FAIL: restarted daemon produced no disk-cache hits" >&2
  exit 1
fi

echo "== serve smoke: PASS =="
