#!/usr/bin/env bash
# Tier-1 verification: the full test suite on the default build, plus the
# concurrency-sensitive suites (engine / portfolio / query cache) rebuilt and
# re-run under ThreadSanitizer so every PR race-checks the worker pool and the
# solver cancellation paths.
#
# Usage: scripts/tier1.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
[[ "${1:-}" == "--skip-tsan" ]] && SKIP_TSAN=1

echo "== tier-1: default build + full ctest =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --preset default -j "$(nproc)"

echo "== tier-1: incremental-solving ablation (verdict agreement + speedup) =="
# Fails when incremental and fresh-per-query modes disagree on any verdict;
# also emits BENCH_incremental.json with the measured speedups.
(cd build && ./bench/ablate_incremental)

echo "== tier-1: prefilter ablation (verdict agreement + tier-0 rate) =="
# Fails when the tiered prefilter changes any verdict (corpus + injected-bug
# mutants); also emits BENCH_prefilter.json with discharge rates and speedups.
(cd build && ./bench/ablate_prefilter)

echo "== tier-1: MiniSMT ablation (technique agreement, reduced widths) =="
# Fails when any raw-speed technique (LBD / chrono / inprocess / rewrite /
# seed portfolio) changes a verdict on the corpus or the injected-bug
# mutants; PUGPARA_MINI_FAST keeps the equivalence stage at CI-sized widths.
# Also emits BENCH_minismt.json with the ablation timings.
(cd build && PUGPARA_MINI_FAST=1 ./bench/ablate_minismt)

echo "== tier-1: serve bench (verdict equality + 10x warm-cache gates) =="
# Fails when serve-mode verdicts differ from the one-shot baseline or when
# warm / disk-warm re-submission is not >=10x faster than cold single-shot;
# also emits BENCH_serve.json with latency percentiles and hit rates.
(cd build && ./bench/bench_serve)

echo "== tier-1: serve smoke (daemon round-trip over the Unix socket) =="
# Boots `pugpara serve`, submits the corpus twice, restarts the daemon on
# the same cache dir, and asserts verdict equality with the batch CLI plus
# non-zero warm and disk-warm cache hit rates.
scripts/serve_smoke.sh

# Keep the benchmark artifacts visible at the repo root (committed copies
# are refreshed by PRs that change the measured numbers).
cp build/BENCH_*.json .

if [[ "$SKIP_TSAN" == 1 ]]; then
  echo "== tier-1: TSan stage skipped (--skip-tsan) =="
  exit 0
fi

echo "== tier-1: TSan build + engine/serve concurrency suites =="
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target pugpara_tests
# Only the suites that exercise cross-thread machinery; the sequential
# checker/solver suites add nothing under TSan and triple the runtime.
# ServeTest drives the daemon's accept loop, reader threads, worker pool and
# streaming writer; CacheStoreTest covers the write-behind journal thread.
# Z3 ships uninstrumented, so suppress reports that originate inside it.
TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp ${TSAN_OPTIONS:-}" \
  ./build-tsan/tests/pugpara_tests \
  --gtest_filter='EngineTest.*:PortfolioTest.*:QueryCacheTest.*:StructuralHashTest.*:ServeTest.*:CacheStoreTest.*'

echo "== tier-1: all stages passed =="
